package workload

import (
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// MCB models the Monte Carlo Burnup transport code with 3,000,000 particles:
// long particle-tracking computation phases with occasional, bursty particle
// migrations to neighboring domains and a periodic census/rebalance step.  It
// uses little of the switch on average (and is therefore insensitive to
// reduced switch capability) but its bursts are visible to probe packets.
type MCB struct {
	// TrackingCompute is the per-iteration particle tracking time.
	TrackingCompute sim.Duration
	// MigrationBytes is the size of the per-iteration particle migration
	// message to each of two neighbors.
	MigrationBytes int
	// CensusInterval is how many iterations separate census/rebalance bursts.
	CensusInterval int
	// CensusBytes is the size of the burst messages exchanged with each
	// neighbor during a census.
	CensusBytes int
	// CensusReduceBytes is the size of the census tally reduction.
	CensusReduceBytes int
}

// NewMCB returns the MCB model at the given scale.
func NewMCB(s Scale) *MCB {
	s = s.valid()
	return &MCB{
		TrackingCompute:   s.compute(3500),
		MigrationBytes:    s.bytes(2 * 1024),
		CensusInterval:    4,
		CensusBytes:       s.bytes(64 * 1024),
		CensusReduceBytes: s.bytes(1024),
	}
}

// Name implements App.
func (m *MCB) Name() string { return "MCB" }

// Placement implements App: 4 ranks per socket on every node.
func (m *MCB) Placement(nodes int) (int, int) { return 4, nodes }

// Iterate implements App (blocking form of IterateThen).
func (m *MCB) Iterate(r *mpisim.Rank, iter int) { iterate(m, r, iter) }

// IterateThen implements App.
func (m *MCB) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	n := r.Size()
	// Periodic census: a burst of larger exchanges plus a tally reduction.
	census := func() {
		if m.CensusInterval > 0 && (iter+1)%m.CensusInterval == 0 && n > 1 {
			burst := gridNeighbors(r.Rank(), n, 2)
			haloExchangeThen(r, burst, m.CensusBytes, 600, func() {
				r.AllreduceThen(m.CensusReduceBytes, k)
			})
			return
		}
		r.Continue(k)
	}
	// Long tracking phase, then particle migration with the two ring
	// neighbors.
	r.ComputeThen(m.TrackingCompute, func() {
		if n > 1 {
			neighbors := []int{(r.Rank() + 1) % n, (r.Rank() - 1 + n) % n}
			haloExchangeThen(r, neighbors, m.MigrationBytes, 500, census)
			return
		}
		census()
	})
}

// AMG models the algebraic multigrid solver from hypre: every iteration is a
// V-cycle descending through coarser levels (smaller halos, less compute) and
// back up, with a small all-reduce on the coarsest level; every few
// iterations the solver runs a long, communication-free dense phase (the
// setup/dense-representation behaviour the paper highlights as making AMG's
// network usage phase-dependent).
type AMG struct {
	// Levels is the number of multigrid levels visited on the way down.
	Levels int
	// FineHaloBytes is the halo size on the finest level; each coarser level
	// halves it.
	FineHaloBytes int
	// FineCompute is the smoother time on the finest level; each coarser
	// level halves it.
	FineCompute sim.Duration
	// CoarseReduceBytes is the coarsest-level solve reduction size.
	CoarseReduceBytes int
	// DensePhaseInterval is how many V-cycles separate the dense
	// (communication-free) phases; 0 disables them.
	DensePhaseInterval int
	// DensePhaseCompute is the duration of a dense phase.
	DensePhaseCompute sim.Duration
}

// NewAMG returns the AMG model at the given scale.
func NewAMG(s Scale) *AMG {
	s = s.valid()
	return &AMG{
		Levels:             2,
		FineHaloBytes:      s.bytes(3 * 1024),
		FineCompute:        s.compute(420),
		CoarseReduceBytes:  256,
		DensePhaseInterval: 4,
		DensePhaseCompute:  s.compute(1800),
	}
}

// Name implements App.
func (a *AMG) Name() string { return "AMG" }

// Placement implements App: 4 ranks per socket on every node.
func (a *AMG) Placement(nodes int) (int, int) { return 4, nodes }

// Iterate implements App (blocking form of IterateThen).
func (a *AMG) Iterate(r *mpisim.Rank, iter int) { iterate(a, r, iter) }

// IterateThen implements App: one V-cycle, occasionally followed by a dense
// phase.
func (a *AMG) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	neighbors := gridNeighbors(r.Rank(), r.Size(), 3)
	halo := a.FineHaloBytes
	compute := a.FineCompute
	level := 0
	upLevel := 0
	var down, exchanged, coarse, up mpisim.Cont
	// Down-sweep: smoother compute plus a halo exchange per level.
	down = func() {
		if level >= a.Levels {
			coarse()
			return
		}
		r.ComputeThen(compute, exchanged)
	}
	exchanged = func() {
		haloExchangeThen(r, neighbors, maxInt(halo, 1), 700+level, func() {
			halo /= 2
			compute /= 2
			level++
			down()
		})
	}
	// Coarsest solve.
	coarse = func() {
		r.ComputeThen(compute, func() {
			r.AllreduceThen(a.CoarseReduceBytes, func() {
				upLevel = a.Levels - 1
				up()
			})
		})
	}
	// Up-sweep: the interpolation transfers overlap with the smoother, so the
	// up-sweep contributes computation but no blocking halo exchanges; then
	// the occasional dense, communication-free phase.
	up = func() {
		if upLevel < 0 {
			if a.DensePhaseInterval > 0 && (iter+1)%a.DensePhaseInterval == 0 {
				r.ComputeThen(a.DensePhaseCompute, k)
				return
			}
			r.Continue(k)
			return
		}
		compute *= 2
		upLevel--
		r.ComputeThen(compute, up)
	}
	down()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
