package workload

import (
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// Lulesh models the Livermore Unstructured Lagrangian Explicit Shock
// Hydrodynamics proxy application on a 22x22x22 cube per domain: a 3-D
// stencil with face halo exchanges interleaved with heavy element-update
// computation, plus the global time-step reduction at the end of every
// iteration.  It requires a cubic number of ranks in the real code, which the
// paper accommodates by running 64 ranks (2 per socket on 16 nodes).
type Lulesh struct {
	// HaloBytes is the size of one face exchange message.
	HaloBytes int
	// ForceHaloBytes is the size of the second (nodal force) exchange.
	ForceHaloBytes int
	// ComputePerPhase is the element/nodal update time per half-iteration.
	ComputePerPhase sim.Duration
	// ReduceBytes is the size of the dt allreduce.
	ReduceBytes int
}

// NewLulesh returns the Lulesh model at the given scale.
func NewLulesh(s Scale) *Lulesh {
	s = s.valid()
	return &Lulesh{
		HaloBytes:       s.bytes(20 * 1024),
		ForceHaloBytes:  s.bytes(12 * 1024),
		ComputePerPhase: s.compute(900),
		ReduceBytes:     8,
	}
}

// Name implements App.
func (l *Lulesh) Name() string { return "Lulesh" }

// Placement implements App: 2 ranks per socket on all but two nodes, the
// paper's layout for the cubic rank-count requirement (64 ranks on 16 of the
// 18 nodes).
func (l *Lulesh) Placement(nodes int) (int, int) {
	use := nodes - 2
	if use < 1 {
		use = nodes
	}
	return 2, use
}

// Iterate implements App (blocking form of IterateThen).
func (l *Lulesh) Iterate(r *mpisim.Rank, iter int) { iterate(l, r, iter) }

// IterateThen implements App.
func (l *Lulesh) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	neighbors := gridNeighbors(r.Rank(), r.Size(), 3)
	haloExchangeThen(r, neighbors, l.HaloBytes, 100, func() {
		r.ComputeThen(l.ComputePerPhase, func() {
			haloExchangeThen(r, neighbors, l.ForceHaloBytes, 200, func() {
				r.ComputeThen(l.ComputePerPhase, func() {
					r.AllreduceThen(l.ReduceBytes, k)
				})
			})
		})
	})
}

// MILC models the MIMD Lattice Computation conjugate-gradient solver
// (su3_rmd): every iteration applies the Dslash operator, which exchanges
// small halo surfaces with the neighbors of a 4-D lattice decomposition, with
// little computation in between, and finishes with a global reduction for the
// CG dot products.  Its many small, frequent messages make it sensitive to
// switch latency.
type MILC struct {
	// HaloBytes is the surface exchanged with each of the 8 lattice
	// neighbors per Dslash application.
	HaloBytes int
	// ComputePerPhase is the local su3 matrix-vector time per Dslash.
	ComputePerPhase sim.Duration
	// ReduceBytes is the CG dot-product allreduce size.
	ReduceBytes int
}

// NewMILC returns the MILC model at the given scale (lattice 16x32x32x36).
func NewMILC(s Scale) *MILC {
	s = s.valid()
	return &MILC{
		HaloBytes:       s.bytes(8 * 1024),
		ComputePerPhase: s.compute(60),
		ReduceBytes:     64,
	}
}

// Name implements App.
func (m *MILC) Name() string { return "MILC" }

// Placement implements App: 4 ranks per socket on every node.
func (m *MILC) Placement(nodes int) (int, int) { return 4, nodes }

// Iterate implements App (blocking form of IterateThen).
func (m *MILC) Iterate(r *mpisim.Rank, iter int) { iterate(m, r, iter) }

// IterateThen implements App: two Dslash halo exchanges plus the CG
// reduction.
func (m *MILC) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	neighbors := gridNeighbors(r.Rank(), r.Size(), 4)
	haloExchangeThen(r, neighbors, m.HaloBytes, 300, func() {
		r.ComputeThen(m.ComputePerPhase, func() {
			haloExchangeThen(r, neighbors, m.HaloBytes, 400, func() {
				r.ComputeThen(m.ComputePerPhase, func() {
					r.AllreduceThen(m.ReduceBytes, k)
				})
			})
		})
	})
}
