// Package workload provides communication-skeleton models of the six HPC
// applications the paper evaluates (AMG, FFTW, Lulesh, MCB, MILC, VPFFT).
//
// The paper's methodology does not depend on what the applications compute,
// only on how they use the switch: message sizes, communication patterns
// (alltoall, halo exchange, collectives), how much computation separates the
// communication phases, and how this structure repeats over iterations.  Each
// model reproduces the character described in Section II of the paper:
//
//   - FFTW — alltoall-dominated 2-D FFT transposes with very little compute
//     between them (most network-sensitive).
//   - VPFFT — the same alltoall structure with expensive computation between
//     communication phases (sensitive, with more variance).
//   - MILC — conjugate-gradient iterations with frequent small neighbor
//     exchanges and a global reduction every iteration (latency-sensitive).
//   - Lulesh — 3-D stencil halo exchanges interleaved with heavy compute
//     (mildly sensitive).
//   - MCB — Monte Carlo transport: almost entirely compute with rare,
//     bursty particle migrations (insensitive, but visible to probes).
//   - AMG — multigrid V-cycles alternating compute-heavy dense phases with
//     sparse phases that send many small messages (insensitive overall).
//
// All data volumes and compute grains can be scaled down so the same models
// drive both paper-scale benchmarks and fast CI tests.
package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// App is one application model.  One outer iteration is executed by every
// rank in a loop; the measurement harness times iterations to obtain the
// application's performance under different network conditions.  IterateThen
// is the primary form — a continuation-passing body that runs on either rank
// runtime — and Iterate is its blocking wrapper for goroutine-backed ranks
// (every model implements Iterate by driving IterateThen through
// mpisim.Rank.RunInline, so the two are the same operations by
// construction).
type App interface {
	// Name is the application's short name (e.g. "FFTW").
	Name() string
	// Placement returns the process layout the paper uses for this
	// application given the number of nodes attached to the switch:
	// ranks-per-socket and how many of the nodes to use.
	Placement(nodes int) (ranksPerSocket, useNodes int)
	// Iterate runs one outer iteration of the application on rank r, which
	// must be goroutine-backed.  iter is the iteration index (some
	// applications change behaviour across iterations, e.g. AMG's phases).
	Iterate(r *mpisim.Rank, iter int)
	// IterateThen runs one outer iteration on rank r in continuation-passing
	// style, continuing with k when the iteration completes.
	IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont)
}

// Scale adjusts problem sizes so the models can run at paper scale or at a
// reduced test scale.
type Scale struct {
	// Volume scales communication data volumes (1 = paper-like sizes).
	Volume float64
	// Compute scales per-iteration computation times (1 = paper-like).
	Compute float64
}

// FullScale is the paper-like problem size.
var FullScale = Scale{Volume: 1, Compute: 1}

// Reduced returns a reduced scale for fast tests and exploration.  Data
// volumes shrink by f while compute shrinks only by sqrt(f): communication
// cost has a fixed latency component that does not shrink with message size,
// so scaling compute more gently keeps each application's
// communication-to-computation character close to its full-scale behaviour.
func Reduced(f float64) Scale {
	if f <= 0 {
		return FullScale
	}
	if f > 1 {
		f = 1
	}
	return Scale{Volume: f, Compute: math.Sqrt(f)}
}

// valid clamps nonsensical scale factors to something usable.
func (s Scale) valid() Scale {
	if s.Volume <= 0 {
		s.Volume = 1
	}
	if s.Compute <= 0 {
		s.Compute = 1
	}
	return s
}

// bytes scales a byte count, keeping at least one byte.
func (s Scale) bytes(b float64) int {
	v := int(b * s.Volume)
	if v < 1 {
		v = 1
	}
	return v
}

// compute scales a duration expressed in microseconds.
func (s Scale) compute(us float64) sim.Duration {
	return sim.DurationOfMicros(us * s.Compute)
}

// Registry returns the six applications of the paper's evaluation at the
// given scale, in the order used throughout the paper's tables and figures.
func Registry(s Scale) []App {
	s = s.valid()
	return []App{
		NewFFTW(s),
		NewLulesh(s),
		NewMCB(s),
		NewMILC(s),
		NewVPFFT(s),
		NewAMG(s),
	}
}

// Names returns the application names in registry order.
func Names() []string {
	return []string{"FFTW", "Lulesh", "MCB", "MILC", "VPFFT", "AMG"}
}

// ByName returns the named application at the given scale.
func ByName(name string, s Scale) (App, error) {
	for _, a := range Registry(s) {
		if a.Name() == name {
			return a, nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return nil, fmt.Errorf("workload: unknown application %q (valid: %v)", name, valid)
}

// --- shared communication building blocks ----------------------------------

// haloExchangeThen posts non-blocking sends and receives of size bytes with
// every neighbor and waits for all of them, then continues with k — the
// standard stencil boundary exchange.  All messages of one exchange share the
// same tag and are disambiguated by their source rank, so the two sides of
// each pair need not enumerate their neighbors in the same order.
func haloExchangeThen(r *mpisim.Rank, neighbors []int, size, tag int, k mpisim.Cont) {
	reqs := make([]*mpisim.Request, 0, 2*len(neighbors))
	for _, nb := range neighbors {
		reqs = append(reqs, r.Irecv(nb, tag))
		reqs = append(reqs, r.Isend(nb, tag, size))
	}
	r.WaitAllThen(k, reqs...)
}

// iterate is the shared blocking wrapper behind every model's Iterate: it
// drives the continuation-passing IterateThen to completion on a
// goroutine-backed rank.
func iterate(a App, r *mpisim.Rank, iter int) {
	r.RunInline(func(done mpisim.Cont) { a.IterateThen(r, iter, done) })
}

// gridNeighbors returns the 2*dims neighbors of rank in a periodic Cartesian
// grid factored as evenly as possible over the world size.
func gridNeighbors(rank, size, dims int) []int {
	shape := factorGrid(size, dims)
	coords := rankToCoords(rank, shape)
	var out []int
	for d := 0; d < len(shape); d++ {
		if shape[d] == 1 {
			continue
		}
		for _, dir := range []int{-1, +1} {
			c := append([]int(nil), coords...)
			c[d] = (c[d] + dir + shape[d]) % shape[d]
			nb := coordsToRank(c, shape)
			if nb != rank {
				out = append(out, nb)
			}
		}
	}
	if len(out) == 0 && size > 1 {
		out = append(out, (rank+1)%size)
	}
	return out
}

// factorGrid factors n into dims factors as close to each other as possible.
func factorGrid(n, dims int) []int {
	shape := make([]int, dims)
	for i := range shape {
		shape[i] = 1
	}
	remaining := n
	for d := 0; d < dims; d++ {
		// Choose the largest factor <= the dims-d th root of remaining.
		target := intRoot(remaining, dims-d)
		f := 1
		for c := target; c >= 1; c-- {
			if remaining%c == 0 {
				f = c
				break
			}
		}
		shape[d] = f
		remaining /= f
	}
	shape[dims-1] *= remaining
	return shape
}

// intRoot returns the integer k-th root of n (floor).
func intRoot(n, k int) int {
	if k <= 1 {
		return n
	}
	r := 1
	for (r+1)*pow(r+1, k-1) <= n {
		r++
	}
	if r < 1 {
		r = 1
	}
	return r
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func rankToCoords(rank int, shape []int) []int {
	coords := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		coords[d] = rank % shape[d]
		rank /= shape[d]
	}
	return coords
}

func coordsToRank(coords, shape []int) int {
	rank := 0
	for d := 0; d < len(shape); d++ {
		rank = rank*shape[d] + coords[d]
	}
	return rank
}
