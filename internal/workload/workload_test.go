package workload

import (
	"testing"
	"testing/quick"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// runApp executes iters iterations of app on a small machine and returns the
// virtual completion time and the bytes its traffic pushed through the
// switch.
func runApp(t testing.TB, app App, nodes, iters int) (sim.Duration, int64) {
	t.Helper()
	k := sim.NewKernel(42)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = nodes
	m := cluster.MustNew(k, cfg)
	rps, use := app.Placement(nodes)
	job, err := m.AllocateSpread(app.Name(), rps, use)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(m, job, mpisim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpisim.Rank) {
		for i := 0; i < iters; i++ {
			app.Iterate(r, i)
		}
	})
	k.Run()
	if !w.Done() {
		t.Fatalf("%s did not finish", app.Name())
	}
	at, _ := w.CompletionTime()
	return sim.Duration(at), m.Network().Stats().BytesByClass[app.Name()]
}

func TestRegistryNamesAndOrder(t *testing.T) {
	apps := Registry(Reduced(0.1))
	want := Names()
	if len(apps) != 6 || len(want) != 6 {
		t.Fatalf("registry size = %d", len(apps))
	}
	for i, a := range apps {
		if a.Name() != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, a.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, FullScale)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("nosuchapp", FullScale); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestScaleHelpers(t *testing.T) {
	s := Scale{}.valid()
	if s.Volume != 1 || s.Compute != 1 {
		t.Fatalf("invalid scale not clamped: %+v", s)
	}
	r := Reduced(0.25)
	if r.Volume != 0.25 || r.Compute != 0.5 {
		t.Fatalf("Reduced = %+v (compute should shrink as sqrt of volume)", r)
	}
	if Reduced(-1) != FullScale || Reduced(0) != FullScale {
		t.Fatal("non-positive factors should fall back to full scale")
	}
	if Reduced(5).Volume != 1 {
		t.Fatal("factors above 1 should clamp to full scale volume")
	}
	if r.bytes(4) != 1 {
		t.Fatalf("bytes(4) at 0.25 = %d, want 1", r.bytes(4))
	}
	if Reduced(0.0001).bytes(10) != 1 {
		t.Fatal("bytes should clamp to at least 1")
	}
	if FullScale.compute(100) != 100*sim.Microsecond {
		t.Fatalf("compute(100µs) = %v", FullScale.compute(100))
	}
}

func TestPlacements(t *testing.T) {
	const nodes = 18
	for _, a := range Registry(FullScale) {
		rps, use := a.Placement(nodes)
		switch a.Name() {
		case "Lulesh":
			if rps != 2 || use != 16 {
				t.Errorf("Lulesh placement = %d/%d, want 2/16", rps, use)
			}
		default:
			if rps != 4 || use != 18 {
				t.Errorf("%s placement = %d/%d, want 4/18", a.Name(), rps, use)
			}
		}
	}
	// Lulesh placement degenerates gracefully on tiny machines.
	l := NewLulesh(FullScale)
	if _, use := l.Placement(2); use != 2 {
		t.Errorf("Lulesh on 2 nodes should use both, got %d", use)
	}
}

func TestGridNeighbors(t *testing.T) {
	const size = 64
	for rank := 0; rank < size; rank++ {
		nbs := gridNeighbors(rank, size, 3)
		if len(nbs) == 0 || len(nbs) > 6 {
			t.Fatalf("rank %d: %d neighbors", rank, len(nbs))
		}
		seen := map[int]bool{}
		for _, nb := range nbs {
			if nb < 0 || nb >= size {
				t.Fatalf("rank %d: neighbor %d out of range", rank, nb)
			}
			if nb == rank {
				t.Fatalf("rank %d: neighbor is self", rank)
			}
			seen[nb] = true
		}
	}
	// Degenerate world of 2 ranks still has a neighbor.
	if nbs := gridNeighbors(0, 2, 3); len(nbs) == 0 {
		t.Fatal("no neighbors in a 2-rank world")
	}
}

func TestGridNeighborsSymmetric(t *testing.T) {
	// If b is a neighbor of a, then a must be a neighbor of b (needed so the
	// halo exchange sends and receives match up).
	const size = 48
	neighborSet := func(rank int) map[int]bool {
		out := map[int]bool{}
		for _, nb := range gridNeighbors(rank, size, 4) {
			out[nb] = true
		}
		return out
	}
	sets := make([]map[int]bool, size)
	for rank := 0; rank < size; rank++ {
		sets[rank] = neighborSet(rank)
	}
	for a := 0; a < size; a++ {
		for b := range sets[a] {
			if !sets[b][a] {
				t.Fatalf("asymmetric neighborship: %d -> %d but not back", a, b)
			}
		}
	}
}

func TestFactorGridProduct(t *testing.T) {
	cases := []struct{ n, dims int }{
		{64, 3}, {144, 3}, {144, 4}, {48, 3}, {7, 2}, {1, 3}, {100, 2},
	}
	for _, c := range cases {
		shape := factorGrid(c.n, c.dims)
		prod := 1
		for _, s := range shape {
			if s < 1 {
				t.Fatalf("factorGrid(%d,%d) has non-positive factor: %v", c.n, c.dims, shape)
			}
			prod *= s
		}
		if prod != c.n {
			t.Fatalf("factorGrid(%d,%d) = %v, product %d", c.n, c.dims, shape, prod)
		}
	}
}

func TestFactorGridProperty(t *testing.T) {
	prop := func(nRaw, dimsRaw uint8) bool {
		n := int(nRaw)%200 + 1
		dims := int(dimsRaw)%4 + 1
		shape := factorGrid(n, dims)
		prod := 1
		for _, s := range shape {
			if s < 1 {
				return false
			}
			prod *= s
		}
		return prod == n && len(shape) == dims
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	shape := []int{4, 3, 2}
	for rank := 0; rank < 24; rank++ {
		coords := rankToCoords(rank, shape)
		if got := coordsToRank(coords, shape); got != rank {
			t.Fatalf("round trip failed for rank %d: coords=%v got=%d", rank, coords, got)
		}
	}
}

func TestEveryAppRunsToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs are slow in -short mode")
	}
	for _, app := range Registry(Reduced(0.1)) {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			elapsed, bytes := runApp(t, app, 4, 3)
			if elapsed <= 0 {
				t.Fatalf("%s: non-positive elapsed time", app.Name())
			}
			if bytes <= 0 {
				t.Fatalf("%s: no switch traffic at all", app.Name())
			}
		})
	}
}

func TestCommunicationIntensityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs are slow in -short mode")
	}
	// FFTW must push far more bytes through the switch per unit of runtime
	// than MCB; this ordering is what drives the paper's Figure 7.
	scale := Reduced(0.1)
	elapsedFFTW, bytesFFTW := runApp(t, NewFFTW(scale), 4, 3)
	elapsedMCB, bytesMCB := runApp(t, NewMCB(scale), 4, 3)
	rateFFTW := float64(bytesFFTW) / elapsedFFTW.Seconds()
	rateMCB := float64(bytesMCB) / elapsedMCB.Seconds()
	if rateFFTW < 5*rateMCB {
		t.Fatalf("FFTW switch-byte rate (%.3g B/s) not clearly above MCB (%.3g B/s)", rateFFTW, rateMCB)
	}
}

func TestVPFFTComputeVariesAcrossIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs are slow in -short mode")
	}
	// Run two different iteration counts and check per-iteration time is not
	// constant (the oscillation the paper reports for VPFFT).
	app := NewVPFFT(Reduced(0.1))
	e3, _ := runApp(t, app, 2, 3)
	e6, _ := runApp(t, app, 2, 6)
	perIterFirst := float64(e3) / 3
	perIterSecond := float64(e6-e3) / 3
	if perIterFirst == perIterSecond {
		t.Fatal("VPFFT iterations are perfectly uniform; expected variation")
	}
}

func TestAMGDensePhase(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs are slow in -short mode")
	}
	// With the dense phase enabled every iteration, runtime must grow
	// substantially compared to the same model without dense phases.
	scale := Reduced(0.1)
	base := NewAMG(scale)
	base.DensePhaseInterval = 0
	dense := NewAMG(scale)
	dense.DensePhaseInterval = 1
	eBase, _ := runApp(t, base, 2, 4)
	eDense, _ := runApp(t, dense, 2, 4)
	if eDense <= eBase {
		t.Fatalf("dense phases should lengthen iterations: base=%v dense=%v", eBase, eDense)
	}
}

func TestScaleReducesTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("application runs are slow in -short mode")
	}
	_, big := runApp(t, NewMILC(Reduced(0.5)), 2, 2)
	_, small := runApp(t, NewMILC(Reduced(0.05)), 2, 2)
	if small >= big {
		t.Fatalf("reduced scale should reduce traffic: %d vs %d", small, big)
	}
}

func BenchmarkFFTWIteration(b *testing.B) {
	k := sim.NewKernel(1)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 4
	m := cluster.MustNew(k, cfg)
	app := NewFFTW(Reduced(0.1))
	job, err := m.AllocateSpread(app.Name(), 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	w := mpisim.MustNewWorld(m, job, mpisim.DefaultConfig())
	iters := b.N
	w.Launch(func(r *mpisim.Rank) {
		for i := 0; i < iters; i++ {
			app.Iterate(r, i)
		}
	})
	b.ResetTimer()
	k.Run()
}
