// Package switchprobe is an active-measurement toolkit for quantifying how
// much of a network switch a parallel application uses and how the
// application's performance degrades when switch capability is shared with
// other software.  It reproduces the methodology of
//
//	Marc Casas and Greg Bronevetsky,
//	"Active Measurement of the Impact of Network Switch Utilization on
//	Application Performance", IPDPS 2014,
//
// on a packet-level simulated cluster (the paper's LLNL Cab testbed is not
// generally available), including:
//
//   - the ImpactB probe benchmark and per-component impact signatures,
//   - the CompressionB traffic injector and its 40-configuration grid,
//   - the M/G/1 queue model of switch utilization (Pollaczek–Khinchine
//     inversion),
//   - the four slowdown predictors (AverageLT, AverageStDevLT, PDFLT,
//     Queue),
//   - six HPC application skeletons (AMG, FFTW, Lulesh, MCB, MILC, VPFFT),
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation,
//   - and a contention-aware cluster scheduler simulator that closes the
//     paper's loop: job streams are placed over the fabric's contention
//     domains by pluggable policies, with the predictor-guided policy
//     scoring candidate placements before committing them.
//
// This file is the public facade: it re-exports the library's primary types
// and entry points so downstream users never import internal packages
// directly.  The deeper building blocks (the discrete-event kernel, the
// switch model, the MPI-like runtime) remain internal.
package switchprobe

import (
	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/predict"
	"github.com/hpcperf/switchprobe/internal/probe"
	"github.com/hpcperf/switchprobe/internal/queuing"
	"github.com/hpcperf/switchprobe/internal/report"
	"github.com/hpcperf/switchprobe/internal/sched"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// --- topology and placement --------------------------------------------------

// Topology describes the fabric connecting the simulated nodes (set it on
// MachineConfig.Net.Topology; nil means the paper's single switch).
type Topology = netsim.Topology

// Star is the paper's single-switch topology.
type Star = netsim.Star

// FatTree is a two-stage multi-switch fabric with tunable oversubscription.
type FatTree = netsim.FatTree

// ParseTopology builds a topology from textual CLI-style parameters.
func ParseTopology(kind string, leaves, uplinks int) (Topology, error) {
	return netsim.ParseTopology(kind, leaves, uplinks)
}

// PlacementPolicy selects how application nodes are picked across the
// topology's leaf switches (set it on Options.Placement).
type PlacementPolicy = cluster.PlacementPolicy

// Placement policies.
const (
	PlacePack   = cluster.PlacePack
	PlaceSpread = cluster.PlaceSpread
	PlaceRandom = cluster.PlaceRandom
)

// Slot restricts an application to one half of the machine for placed
// co-run experiments.
type Slot = core.Slot

// Machine slots for placed co-run measurements.
const (
	SlotAll = core.SlotAll
	SlotA   = core.SlotA
	SlotB   = core.SlotB
)

// --- measurement methodology -------------------------------------------------

// Options configures a measurement campaign (machine, window, probe, scale).
type Options = core.Options

// Signature is a component's switch-usage fingerprint as observed by ImpactB.
type Signature = core.Signature

// Calibration holds the idle-switch M/G/1 calibration.
type Calibration = core.Calibration

// Runtime is an application's measured iteration rate.
type Runtime = core.Runtime

// Profile is an application's compression profile (utilization → slowdown).
type Profile = core.Profile

// ProfilePoint is one compression measurement in a Profile.
type ProfilePoint = core.ProfilePoint

// MachineConfig describes the simulated cluster (nodes, sockets, switch).
type MachineConfig = cluster.Config

// ServiceModel is the switch's M/G/1 service model (µ, Var(S)).
type ServiceModel = queuing.ServiceModel

// ProbeConfig configures the ImpactB probe benchmark.
type ProbeConfig = probe.Config

// DefaultOptions returns paper-scale measurement options (18-node Cab-like
// switch, full problem sizes).
func DefaultOptions() Options { return core.DefaultOptions() }

// ReducedOptions returns small, fast options suitable for tests and
// exploration (6 nodes, strongly reduced problem sizes).
func ReducedOptions() Options { return core.TestOptions() }

// Calibrate measures the idle switch with ImpactB and derives the M/G/1
// service model used by the queue predictor.
func Calibrate(o Options) (Calibration, error) { return core.Calibrate(o) }

// MeasureAppImpact measures an application's impact signature: the probe
// latency distribution (and inferred switch utilization) while it runs.
func MeasureAppImpact(o Options, cal Calibration, app App) (Signature, error) {
	return core.MeasureAppImpact(o, cal, app)
}

// MeasureInjectorImpact measures a CompressionB configuration's impact
// signature.
func MeasureInjectorImpact(o Options, cal Calibration, cfg InjectorConfig) (Signature, error) {
	return core.MeasureInjectorImpact(o, cal, cfg)
}

// MeasureAppBaseline measures an application's iteration rate on an otherwise
// idle switch.
func MeasureAppBaseline(o Options, app App) (Runtime, error) {
	return core.MeasureAppBaseline(o, app)
}

// MeasureAppUnderInjector measures an application's iteration rate while a
// CompressionB configuration consumes part of the switch.
func MeasureAppUnderInjector(o Options, app App, cfg InjectorConfig) (Runtime, error) {
	return core.MeasureAppUnderInjector(o, app, cfg)
}

// MeasureAppPair measures the iteration rates of two applications sharing the
// switch.
func MeasureAppPair(o Options, a, b App) (Runtime, Runtime, error) {
	return core.MeasureAppPair(o, a, b)
}

// MeasureAppPairPlaced measures a co-run with each application restricted to
// one half of the machine's placement-policy node order (a on SlotA, b on
// SlotB) — the cross-switch ground truth on multi-leaf topologies.
func MeasureAppPairPlaced(o Options, a, b App) (Runtime, Runtime, error) {
	return core.MeasureAppPairPlaced(o, a, b)
}

// MeasureAppBaselineSlot measures an application's iteration rate alone in
// one half of the machine, the baseline placed co-runs are judged against.
func MeasureAppBaselineSlot(o Options, app App, slot Slot) (Runtime, error) {
	return core.MeasureAppBaselineSlot(o, app, slot)
}

// BuildProfile builds an application's compression profile over the given
// injector grid.
func BuildProfile(o Options, cal Calibration, app App, grid []InjectorConfig,
	injSignatures map[string]Signature) (Profile, error) {
	return core.BuildProfile(o, cal, app, grid, injSignatures)
}

// DegradationPercent is the paper's slowdown metric:
// (T_observed − T_baseline) / T_baseline × 100.
func DegradationPercent(baseline, observed Runtime) float64 {
	return core.DegradationPercent(baseline, observed)
}

// --- workloads ----------------------------------------------------------------

// App is an application model that can be measured and co-scheduled.
type App = workload.App

// Scale adjusts application problem sizes.
type Scale = workload.Scale

// FullScale is the paper-like problem size.
var FullScale = workload.FullScale

// ReducedScale returns a proportionally reduced problem size for fast runs.
func ReducedScale(f float64) Scale { return workload.Reduced(f) }

// Applications returns the paper's six applications at the given scale, in
// the order used by its tables and figures.
func Applications(s Scale) []App { return workload.Registry(s) }

// ApplicationNames returns the application names in canonical order.
func ApplicationNames() []string { return workload.Names() }

// ApplicationByName returns the named application at the given scale.
func ApplicationByName(name string, s Scale) (App, error) { return workload.ByName(name, s) }

// --- traffic injection ----------------------------------------------------------

// InjectorConfig is one CompressionB configuration (P partners, M messages,
// B sleep cycles).
type InjectorConfig = inject.Config

// NewInjectorConfig builds a CompressionB configuration with the paper's
// fixed 40 KB message size.
func NewInjectorConfig(partners, messages int, sleepCycles float64) InjectorConfig {
	return inject.NewConfig(partners, messages, sleepCycles)
}

// InjectorGrid returns the paper's 40 CompressionB configurations.
func InjectorGrid() []InjectorConfig { return inject.Grid() }

// ReducedInjectorGrid returns a small representative configuration grid.
func ReducedInjectorGrid() []InjectorConfig { return inject.ReducedGrid() }

// --- prediction -----------------------------------------------------------------

// Predictor predicts co-run slowdowns from impact and compression
// measurements.
type Predictor = model.Predictor

// Predictors returns the paper's four predictors (AverageLT, AverageStDevLT,
// PDFLT, Queue).
func Predictors() []Predictor { return model.All() }

// ExtendedPredictors returns the paper's predictors plus this library's
// phase-aware queue model (QueuePhase), which relaxes the paper's
// constant-utilization assumption.
func ExtendedPredictors() []Predictor { return model.Extended() }

// PredictorByName returns the named predictor.
func PredictorByName(name string) (Predictor, error) { return model.ByName(name) }

// Pairing identifies an ordered application pair (target + co-runner).
type Pairing = predict.Pairing

// PairPrediction is the measured and predicted slowdown of one pairing.
type PairPrediction = predict.PairPrediction

// Study is a full pairwise prediction evaluation.
type Study = predict.Study

// NewStudy evaluates the given predictors on every ordered pair of apps.
func NewStudy(models []Predictor, apps []string, profiles map[string]Profile,
	signatures map[string]Signature, measured map[Pairing]float64) (Study, error) {
	return predict.NewStudy(models, apps, profiles, signatures, measured)
}

// EvaluatePair predicts one pairing with every given model.
func EvaluatePair(models []Predictor, target Profile, coRunner Signature,
	measuredPct float64) (PairPrediction, error) {
	return predict.Evaluate(models, target, coRunner, measuredPct)
}

// --- declarative runs and the artifact engine --------------------------------

// RunSpec fully describes one simulation run as a value, with a canonical
// encoding and a stable content hash; it is the unit of caching.
type RunSpec = core.RunSpec

// RunArtifact is the result of executing one RunSpec.
type RunArtifact = core.Artifact

// RunSpec constructors, one per measurement primitive.
func CalibrateRunSpec(o Options) RunSpec { return core.CalibrateSpec(o) }
func AppImpactRunSpec(o Options, app App, slot Slot) RunSpec {
	return core.AppImpactSpec(o, app, slot)
}
func InjectorImpactRunSpec(o Options, cfg InjectorConfig) RunSpec {
	return core.InjectorImpactSpec(o, cfg)
}
func BaselineRunSpec(o Options, app App, slot Slot) RunSpec { return core.BaselineSpec(o, app, slot) }
func CompressRunSpec(o Options, app App, cfg InjectorConfig, slot Slot) RunSpec {
	return core.CompressSpec(o, app, cfg, slot)
}
func PairRunSpec(o Options, a, b App, placed bool) RunSpec { return core.PairSpec(o, a, b, placed) }

// Engine executes RunSpecs through an in-memory + on-disk content-addressed
// artifact cache with deduplication of concurrent identical runs.
type Engine = engine.Engine

// CacheStats counts how an engine satisfied artifact requests.
type CacheStats = engine.Stats

// NewEngine creates an artifact engine.  A non-empty cacheDir persists
// artifacts to a content-addressed store (shared by swprobe and swpredict);
// an empty cacheDir memoizes in-process only.
func NewEngine(cacheDir string) (*Engine, error) { return engine.New(cacheDir) }

// SpecVersion identifies the canonical RunSpec encoding and the simulator
// generations beneath it; persisted artifacts are keyed on it.
func SpecVersion() string { return core.SpecVersion() }

// --- experiment harness ----------------------------------------------------------

// Preset selects an experiment scale (paper, default, ci).
type Preset = experiments.Preset

// Experiment presets.
const (
	PresetPaper   = experiments.PresetPaper
	PresetDefault = experiments.PresetDefault
	PresetCI      = experiments.PresetCI
)

// ExperimentConfig describes an experiment campaign.
type ExperimentConfig = experiments.Config

// Suite runs the paper's experiments and caches shared measurements.
type Suite = experiments.Suite

// NewExperimentConfig builds the configuration of a preset.
func NewExperimentConfig(preset Preset, seed int64) (ExperimentConfig, error) {
	return experiments.NewConfig(preset, seed)
}

// NewSuite creates an experiment suite with an in-process artifact engine.
func NewSuite(cfg ExperimentConfig) *Suite { return experiments.NewSuite(cfg) }

// NewSuiteWithEngine creates a suite on an existing (typically persistent)
// artifact engine, so repeated or overlapping campaigns reuse runs.
func NewSuiteWithEngine(cfg ExperimentConfig, eng *Engine) *Suite {
	return experiments.NewSuiteWithEngine(cfg, eng)
}

// Experiment result types, one per table/figure of the paper's evaluation.
type (
	// Fig3Result holds the probe-latency distributions (paper Fig. 3).
	Fig3Result = experiments.Fig3Result
	// Fig6Result holds the CompressionB utilization sweep (paper Fig. 6).
	Fig6Result = experiments.Fig6Result
	// Fig7Result holds the degradation-vs-utilization curves (paper Fig. 7).
	Fig7Result = experiments.Fig7Result
	// Table1Result holds the measured pairwise slowdown matrix (paper
	// Table I).
	Table1Result = experiments.Table1Result
	// Fig8Result holds the per-pair prediction errors (paper Fig. 8).
	Fig8Result = experiments.Fig8Result
	// Fig9Result holds the per-model error summary (paper Fig. 9).
	Fig9Result = experiments.Fig9Result
	// XSwitchResult holds the cross-switch campaign: measured and predicted
	// co-run degradation across fat-tree oversubscription ratios and
	// placement policies.
	XSwitchResult = experiments.XSwitchResult
)

// --- contention-aware scheduling ---------------------------------------------

// SchedJob is one job of a scheduler arrival stream.
type SchedJob = sched.JobSpec

// SchedArrivals deterministically generates a job stream from a seed.
type SchedArrivals = sched.ArrivalSpec

// SchedPolicy decides where each arriving job is placed; implementations
// include FirstFit, Pack, Spread, Random and the predictor-in-the-loop
// PredictorGuided.
type SchedPolicy = sched.Policy

// SchedOracle resolves the scheduler model's measured coefficients (solo
// durations, placed co-run slowdowns, signatures and profiles).
type SchedOracle = sched.Oracle

// SchedulerConfig describes one scheduler simulation run.
type SchedulerConfig = sched.Config

// SchedulerResult is one policy's schedule with its summary metrics,
// decision log and utilization timeline.
type SchedulerResult = sched.Result

// RunScheduler executes one deterministic scheduler simulation.
func RunScheduler(cfg SchedulerConfig) (SchedulerResult, error) { return sched.Run(cfg) }

// SchedPolicyNames returns every placement policy name in canonical order.
func SchedPolicyNames() []string { return sched.PolicyNames() }

// NewSchedPolicy builds a placement policy by name; the predictor policy
// scores candidates with pred over the oracle's signatures and profiles.
func NewSchedPolicy(name string, seed int64, pred Predictor, oracle SchedOracle) (SchedPolicy, error) {
	return sched.NewPolicy(name, seed, pred, oracle)
}

// NewSchedOracle builds the engine-backed oracle: every coefficient it
// serves is a cached core RunSpec measured on the options' fabric.
func NewSchedOracle(eng *Engine, o Options, grid []InjectorConfig) SchedOracle {
	return sched.NewEngineOracle(eng, o, grid)
}

// SchedSpec parameterizes the Suite.Sched scheduler campaign.
type SchedSpec = experiments.SchedSpec

// SchedScenario is one fabric the scheduler campaign runs on.
type SchedScenario = experiments.SchedScenario

// SchedCampaignResult is the full scheduler campaign (scenario × policy).
type SchedCampaignResult = experiments.SchedResult

// DefaultSchedScenarios returns the standard fabric set for a node count:
// star plus non-blocking and oversubscribed fat-trees.
func DefaultSchedScenarios(nodes int) []SchedScenario {
	return experiments.DefaultSchedScenarios(nodes)
}

// SchedSummary renders the campaign's per-scenario policy comparison.
func SchedSummary(r SchedCampaignResult) string { return experiments.SchedSummary(r) }

// ResultTable is a rendered result: aligned text via Render, CSV via
// WriteCSV.
type ResultTable = report.Table

// Render helpers turning experiment results into tables.
func RenderFig3(r Fig3Result) ResultTable       { return report.Fig3Table(r) }
func RenderFig6(r Fig6Result) ResultTable       { return report.Fig6Table(r) }
func RenderFig7(r Fig7Result) ResultTable       { return report.Fig7Table(r) }
func RenderTable1(r Table1Result) ResultTable   { return report.Table1Table(r) }
func RenderFig8(r Fig8Result) ResultTable       { return report.Fig8Table(r) }
func RenderFig9(r Fig9Result) ResultTable       { return report.Fig9Table(r) }
func RenderXSwitch(r XSwitchResult) ResultTable { return report.XSwitchTable(r) }

// RenderSched renders the scheduler campaign table.
func RenderSched(r SchedCampaignResult) ResultTable { return report.SchedTable(r) }
