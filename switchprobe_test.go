package switchprobe

import (
	"testing"
)

func TestFacadeOptionsAndApplications(t *testing.T) {
	if DefaultOptions().Machine.Nodes() != 18 {
		t.Fatalf("default machine nodes = %d", DefaultOptions().Machine.Nodes())
	}
	if ReducedOptions().Machine.Nodes() != 6 {
		t.Fatalf("reduced machine nodes = %d", ReducedOptions().Machine.Nodes())
	}
	apps := Applications(ReducedScale(0.1))
	if len(apps) != 6 {
		t.Fatalf("applications = %d", len(apps))
	}
	names := ApplicationNames()
	for i, a := range apps {
		if a.Name() != names[i] {
			t.Fatalf("app %d = %s, want %s", i, a.Name(), names[i])
		}
	}
	if _, err := ApplicationByName("FFTW", FullScale); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplicationByName("bogus", FullScale); err == nil {
		t.Fatal("expected error for unknown application")
	}
}

func TestFacadeInjectorAndPredictors(t *testing.T) {
	if got := len(InjectorGrid()); got != 40 {
		t.Fatalf("injector grid = %d", got)
	}
	if got := len(ReducedInjectorGrid()); got == 0 || got >= 40 {
		t.Fatalf("reduced injector grid = %d", got)
	}
	cfg := NewInjectorConfig(7, 10, 2.5e4)
	if cfg.Partners != 7 || cfg.Messages != 10 {
		t.Fatalf("injector config = %+v", cfg)
	}
	preds := Predictors()
	if len(preds) != 4 {
		t.Fatalf("predictors = %d", len(preds))
	}
	if _, err := PredictorByName("Queue"); err != nil {
		t.Fatal(err)
	}
	if _, err := PredictorByName("bogus"); err == nil {
		t.Fatal("expected error for unknown predictor")
	}
}

func TestFacadeExperimentConfig(t *testing.T) {
	for _, preset := range []Preset{PresetPaper, PresetDefault, PresetCI} {
		cfg, err := NewExperimentConfig(preset, 3)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if NewSuite(cfg) == nil {
			t.Fatalf("%s: nil suite", preset)
		}
	}
	if _, err := NewExperimentConfig("bogus", 1); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestFacadeDegradationPercent(t *testing.T) {
	base := Runtime{TimePerIteration: 200}
	obs := Runtime{TimePerIteration: 300}
	if got := DegradationPercent(base, obs); got != 50 {
		t.Fatalf("degradation = %v", got)
	}
}

func TestFacadeMeasurementWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement workflow is slow; skipped in -short mode")
	}
	opts := ReducedOptions()
	cal, err := Calibrate(opts)
	if err != nil {
		t.Fatal(err)
	}
	app, err := ApplicationByName("MCB", opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := MeasureAppImpact(opts, cal, app)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Component != "MCB" || sig.UtilizationPct < 0 || sig.UtilizationPct > 100 {
		t.Fatalf("signature = %+v", sig)
	}
	base, err := MeasureAppBaseline(opts, app)
	if err != nil {
		t.Fatal(err)
	}
	under, err := MeasureAppUnderInjector(opts, app, NewInjectorConfig(4, 1, 2.5e6))
	if err != nil {
		t.Fatal(err)
	}
	if DegradationPercent(base, under) < -20 {
		t.Fatalf("implausible speedup under interference: base=%v under=%v", base, under)
	}
	prof, err := BuildProfile(opts, cal, app, []InjectorConfig{NewInjectorConfig(1, 1, 2.5e6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := EvaluatePair(Predictors(), prof, sig, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.PredictedPct) != 4 {
		t.Fatalf("pair prediction = %+v", pp)
	}
}
